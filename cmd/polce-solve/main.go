// Command polce-solve runs the inclusion-constraint solver standalone on a
// textual constraint program (the .scl format of internal/scl) — the
// solver-as-a-tool face of the library, independent of any program
// analysis.
//
// Usage:
//
//	polce-solve constraints.scl
//	polce-solve -form sf -cycles none -stats constraints.scl
//	echo 'cons a; a <= X; X <= Y; query Y' | polce-solve -
//
// Each `query V` line in the program prints V's least solution.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"polce/internal/core"
	"polce/internal/scl"
)

func main() {
	var (
		form      = flag.String("form", "if", "graph representation: sf or if")
		cycles    = flag.String("cycles", "online", "cycle policy: none, online, online-incr, periodic")
		seed      = flag.Int64("seed", 1, "variable-order seed")
		interval  = flag.Int("interval", 0, "sweep interval for -cycles periodic")
		lsWorkers = flag.Int("ls-workers", 0, "least-solution pass worker count (0 = GOMAXPROCS, 1 = sequential)")
		stats     = flag.Bool("stats", false, "print solver statistics")
		dotOut    = flag.String("dot", "", "write the final constraint graph as Graphviz DOT to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal("%v", err)
	}

	file, err := scl.Parse(string(src))
	if err != nil {
		fatal("%v", err)
	}

	opt := core.Options{Seed: *seed, PeriodicInterval: *interval, LSWorkers: *lsWorkers}
	switch strings.ToLower(*form) {
	case "sf":
		opt.Form = core.SF
	case "if":
		opt.Form = core.IF
	default:
		fatal("unknown form %q", *form)
	}
	switch strings.ToLower(*cycles) {
	case "none", "plain":
		opt.Cycles = core.CycleNone
	case "online":
		opt.Cycles = core.CycleOnline
	case "online-incr", "incr":
		opt.Cycles = core.CycleOnlineIncreasing
	case "periodic":
		opt.Cycles = core.CyclePeriodic
	default:
		fatal("unknown cycle policy %q", *cycles)
	}

	solved := file.Solve(opt)
	for _, line := range solved.QueryResults() {
		fmt.Println(line)
	}
	if *stats {
		fmt.Printf("\n%s / %s  %s\n", opt.Form, opt.Cycles, solved.Sys.Stats())
		fmt.Printf("final-edges=%d\n", solved.Sys.TotalEdges())
	}
	if n := solved.Sys.ErrorCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "%d inconsistent constraint(s) (first: %v)\n", n, solved.Sys.Errors()[0])
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := solved.Sys.WriteDOT(f); err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "polce-solve: "+format+"\n", args...)
	os.Exit(1)
}
