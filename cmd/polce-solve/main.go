// Command polce-solve runs the inclusion-constraint solver standalone on a
// textual constraint program (the .scl format of internal/scl) — the
// solver-as-a-tool face of the library, independent of any program
// analysis.
//
// Usage:
//
//	polce-solve constraints.scl
//	polce-solve -form sf -cycles none -stats constraints.scl
//	echo 'cons a; a <= X; X <= Y; query Y' | polce-solve -
//
// Each `query V` line in the program prints V's least solution.
//
// Observability (same flags as the polce command):
//
//	polce-solve -metrics-out m.txt constraints.scl   # Prometheus text at exit
//	polce-solve -trace-out t.ndjson constraints.scl  # NDJSON solver-event trace
//	polce-solve -http :6060 constraints.scl          # serve /metrics, /metrics.json,
//	                                                 # /debug/vars and /debug/pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"polce"
	"polce/internal/scl"
	"polce/internal/telemetry"
)

func main() {
	var (
		form      = flag.String("form", "if", "graph representation: sf or if")
		cycles    = flag.String("cycles", "online", "cycle policy: none, online, online-incr, periodic")
		seed      = flag.Int64("seed", 1, "variable-order seed")
		interval  = flag.Int("interval", 0, "sweep interval for -cycles periodic")
		lsWorkers = flag.Int("ls-workers", 0, "least-solution pass worker count (0 = GOMAXPROCS, 1 = sequential)")
		reprFlag  = flag.String("repr", "hybrid", "adjacency storage representation: hybrid or csr")
		stats     = flag.Bool("stats", false, "print solver statistics")
		dotOut    = flag.String("dot", "", "write the final constraint graph as Graphviz DOT to this file")

		metricsOut = flag.String("metrics-out", "", "write Prometheus-text solver metrics to this file at exit")
		traceOut   = flag.String("trace-out", "", "stream solver events as NDJSON to this file (closing record carries the final stats)")
		httpAddr   = flag.String("http", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof on this address (e.g. :6060); keeps serving after the run until interrupted")
		logLevel   = flag.String("log-level", "info", "stderr diagnostic level: debug, info, warn, error")
	)
	flag.Parse()
	level, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fatal("%v", err)
	}
	logger = telemetry.NewLogger(os.Stderr, level)
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	// Telemetry wiring, mirroring cmd/polce: the registry and sink exist
	// only when asked for, so the solver's hooks stay a single nil check
	// otherwise.
	var (
		reg *telemetry.Registry
		sm  *telemetry.SolverMetrics
		tw  *telemetry.TraceWriter
	)
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		reg = telemetry.NewRegistry()
		sm = telemetry.NewSolverMetrics(reg)
		telemetry.PublishExpvar("polce-solve", reg)
	}
	if *httpAddr != "" {
		if _, err := telemetry.Serve(*httpAddr, reg, func(err error) {
			logger.Error("http server error", "error", err.Error())
		}); err != nil {
			fatal("%v", err)
		}
		logger.Info("serving telemetry", "addr", *httpAddr,
			"endpoints", "/metrics /metrics.json /debug/vars /debug/pprof")
	}
	if *traceOut != "" {
		var err error
		tw, err = telemetry.CreateTrace(*traceOut)
		if err != nil {
			fatal("%v", err)
		}
	}

	var src []byte
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal("%v", err)
	}

	file, err := scl.Parse(string(src))
	if err != nil {
		fatal("%v", err)
	}

	opt := polce.Options{Seed: *seed, PeriodicInterval: *interval, LSWorkers: *lsWorkers}
	if opt.Repr, err = polce.ParseRepr(*reprFlag); err != nil {
		fatal("%v", err)
	}
	if sm != nil {
		opt.Metrics = sm
	}
	if tw != nil {
		opt.Observer = tw.Observe
	}
	switch strings.ToLower(*form) {
	case "sf":
		opt.Form = polce.SF
	case "if":
		opt.Form = polce.IF
	default:
		fatal("unknown form %q", *form)
	}
	switch strings.ToLower(*cycles) {
	case "none", "plain":
		opt.Cycles = polce.CycleNone
	case "online":
		opt.Cycles = polce.CycleOnline
	case "online-incr", "incr":
		opt.Cycles = polce.CycleOnlineIncreasing
	case "periodic":
		opt.Cycles = polce.CyclePeriodic
	default:
		fatal("unknown cycle policy %q", *cycles)
	}

	solved := file.Solve(opt)
	for _, line := range solved.QueryResults() {
		fmt.Println(line)
	}
	if *stats {
		fmt.Printf("\n%s / %s  %s\n", opt.Form, opt.Cycles, solved.Sys.Stats())
		fmt.Printf("final-edges=%d\n", solved.Sys.TotalEdges())
	}
	if n := solved.Sys.ErrorCount(); n > 0 {
		logger.Warn("inconsistent constraints", "count", n, "first", solved.Sys.Errors()[0].Error())
	}
	if *dotOut != "" {
		writeFile(*dotOut, solved.Sys.WriteDOT)
	}

	if sm != nil {
		telemetry.PublishStats(reg, solved.Sys.Stats())
	}
	if tw != nil {
		tw.WriteStats(solved.Sys.Stats())
		n := tw.Events()
		if err := tw.Close(); err != nil {
			fatal("%v", err)
		}
		logger.Info("wrote trace", "path", *traceOut, "events", n)
	}
	if *metricsOut != "" {
		writeFile(*metricsOut, reg.WritePrometheus)
	}
	if *httpAddr != "" {
		logger.Info("run complete; still serving until interrupted", "addr", *httpAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// writeFile writes a rendering to path via render.
func writeFile(path string, render func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	if err := render(f); err != nil {
		fatal("%v", err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
}

// logger is re-created once -log-level is parsed; the package-level
// default covers diagnostics before that (flag errors included).
var logger = telemetry.NewLogger(os.Stderr, slog.LevelInfo)

func fatal(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
