// Command polce-serve runs the inclusion-constraint solver as an
// always-on HTTP service: constraints stream in as SCL batches, queries
// are answered from lock-free snapshots, and the whole process drains
// gracefully on SIGTERM.
//
// Usage:
//
//	polce-serve -addr :8080
//	polce-serve -addr :8080 -form sf -cycles online -queue 256
//
// The API v1 (see internal/serve):
//
//	curl -X POST localhost:8080/v1/constraints -d 'cons a; a <= X; X <= Y'
//	curl localhost:8080/v1/least-solution/Y
//	curl localhost:8080/v1/points-to/Y
//	curl localhost:8080/v1/snapshot
//	curl localhost:8080/v1/healthz
//
// Telemetry is always on: /metrics (Prometheus text), /metrics.json,
// /debug/vars and /debug/pprof are served on the same address, with
// per-route latency histograms and status counters alongside the solver's
// own counters.
//
// On SIGTERM or SIGINT the server stops accepting connections, lets
// in-flight requests finish, applies every queued constraint batch, closes
// the solver and exits 0; -drain-timeout bounds the wait.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"polce"
	"polce/internal/serve"
	"polce/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		form      = flag.String("form", "if", "graph representation: sf or if")
		cycles    = flag.String("cycles", "online", "cycle policy: none, online, online-incr, periodic")
		seed      = flag.Int64("seed", 1, "variable-order seed")
		lsWorkers = flag.Int("ls-workers", 0, "least-solution pass worker count (0 = GOMAXPROCS)")

		queueDepth   = flag.Int("queue", 64, "ingestion queue depth (batches)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request deadline")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
		maxBody      = flag.Int64("max-body", 1<<20, "maximum POST body size in bytes")
		snapStale    = flag.Duration("snapshot-stale", 0, "serve reads from a snapshot up to this stale under write churn (0 = always current)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	opt := polce.Options{Seed: *seed, LSWorkers: *lsWorkers}
	switch strings.ToLower(*form) {
	case "sf":
		opt.Form = polce.SF
	case "if":
		opt.Form = polce.IF
	default:
		fatal("unknown form %q", *form)
	}
	switch strings.ToLower(*cycles) {
	case "none", "plain":
		opt.Cycles = polce.CycleNone
	case "online":
		opt.Cycles = polce.CycleOnline
	case "online-incr", "incr":
		opt.Cycles = polce.CycleOnlineIncreasing
	case "periodic":
		opt.Cycles = polce.CyclePeriodic
	default:
		fatal("unknown cycle policy %q", *cycles)
	}

	reg := telemetry.NewRegistry()
	sm := telemetry.NewSolverMetrics(reg)
	opt.Metrics = sm
	telemetry.PublishExpvar("polce-serve", reg)

	srv := serve.New(serve.Config{
		Solver:           polce.New(opt),
		Registry:         reg,
		QueueDepth:       *queueDepth,
		RequestTimeout:   *reqTimeout,
		RetryAfter:       *retryAfter,
		MaxBodyBytes:     *maxBody,
		SnapshotMaxStale: *snapStale,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "polce-serve: %s/%s solver serving API v1 and /metrics on %s (queue %d)\n",
		opt.Form, opt.Cycles, ln.Addr(), *queueDepth)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintf(os.Stderr, "polce-serve: draining (in-flight requests, %d queued batch(es))\n", srv.QueueLen())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting and finish in-flight requests first, then flush the
	// ingestion queue and close the solver.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fatal("http drain: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fatal("queue drain: %v", err)
	}
	fmt.Fprintf(os.Stderr, "polce-serve: drained; %d constraint(s) ingested total\n", srv.Ingested())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "polce-serve: "+format+"\n", args...)
	os.Exit(1)
}
