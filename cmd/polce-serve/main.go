// Command polce-serve runs the inclusion-constraint solver as an
// always-on HTTP service: constraints stream in as SCL batches, queries
// are answered from lock-free snapshots, and the whole process drains
// gracefully on SIGTERM.
//
// Usage:
//
//	polce-serve -addr :8080
//	polce-serve -addr :8080 -form sf -cycles online -queue 256
//
// The API v1 (see internal/serve) is sessionized — each {session} is an
// independent SCL namespace over the one shared solver — with batch
// retraction when -retractable is on (the POST returns a batch handle, the
// DELETE withdraws it):
//
//	curl -X POST localhost:8080/v1/constraints/app -d 'cons a; a <= X; X <= Y'
//	curl -X DELETE localhost:8080/v1/constraints/app/7
//	curl localhost:8080/v1/least-solution/app/Y
//	curl localhost:8080/v1/points-to/app/Y
//	curl localhost:8080/v1/snapshot/app
//	curl localhost:8080/v1/healthz
//
// The pre-session routes (POST /v1/constraints, GET /v1/least-solution/Y,
// ...) still work as deprecated aliases of the default session and answer
// with a Deprecation header. Reads carry a graph-version ETag and honour
// If-None-Match with 304s, so re-polling clients pay nothing while the
// graph is quiet.
//
// Telemetry is always on: /metrics (Prometheus text), /metrics.json,
// /debug/vars and /debug/pprof are served on the same address, with
// per-route latency histograms and status counters alongside the solver's
// own counters.
//
// Diagnostics go to stderr as structured JSON (slog): -log-level picks the
// floor (per-request lines are debug), -slow-query logs any request at or
// over the threshold at warn with its phase breakdown, and -trace-out
// appends request-scoped spans — queue wait, ingest drain, cycle search,
// snapshot capture — as NDJSON correlated by X-Request-Id.
//
// Durability: -wal <dir> appends every accepted batch's SCL text to a
// replayable constraint log before the batch is acknowledged, and replays
// the log through the normal solver path on startup, so a crash loses
// nothing that was acked (-wal-sync picks the fsync policy: always, batch
// or off). Torn log tails — a crash mid-write — are truncated at startup,
// never fatal. `polce-bench -wal-verify` audits a log offline.
//
// On SIGTERM or SIGINT the server stops accepting connections, lets
// in-flight requests finish, applies every queued constraint batch, closes
// the solver and exits 0; -drain-timeout bounds the wait.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"polce"
	"polce/internal/serve"
	"polce/internal/telemetry"
	"polce/internal/wal"
	"polce/internal/walreplay"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		form      = flag.String("form", "if", "graph representation: sf or if")
		cycles    = flag.String("cycles", "online", "cycle policy: none, online, online-incr, periodic")
		seed      = flag.Int64("seed", 1, "variable-order seed")
		lsWorkers = flag.Int("ls-workers", 0, "least-solution pass worker count (0 = GOMAXPROCS)")
		reprFlag  = flag.String("repr", "hybrid", "adjacency storage representation: hybrid or csr")
		retract   = flag.Bool("retractable", true, "track batch reasons so DELETE /v1/constraints/{session}/{batch} can retract them (off: DELETE answers 501)")

		queueDepth   = flag.Int("queue", 64, "ingestion queue depth (batches)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request deadline")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
		maxBody      = flag.Int64("max-body", 1<<20, "maximum POST body size in bytes")
		snapStale    = flag.Duration("snapshot-stale", 0, "serve reads from a snapshot up to this stale under write churn (0 = always current)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")

		walDir     = flag.String("wal", "", "directory of the durable constraint log; replayed on startup, appended per accepted batch")
		walSync    = flag.String("wal-sync", "always", "constraint-log fsync policy: always (per accepted batch), batch (at queue-empty), off")
		walSession = flag.String("wal-session", "default", "session label recorded in each log frame")

		logLevel  = flag.String("log-level", "info", "request/diagnostic log level: debug, info, warn, error (request logs are debug)")
		slowQuery = flag.Duration("slow-query", 0, "log requests at warn with their phase breakdown when they take at least this long (0 = off)")
		traceOut  = flag.String("trace-out", "", "append request-scoped NDJSON spans to this file")
	)
	flag.Parse()

	level, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fatal("%v", err)
	}
	logger = telemetry.NewLogger(os.Stderr, level)

	opt := polce.Options{Seed: *seed, LSWorkers: *lsWorkers, Retractable: *retract}
	if opt.Repr, err = polce.ParseRepr(*reprFlag); err != nil {
		fatal("%v", err)
	}
	switch strings.ToLower(*form) {
	case "sf":
		opt.Form = polce.SF
	case "if":
		opt.Form = polce.IF
	default:
		fatal("unknown form %q", *form)
	}
	switch strings.ToLower(*cycles) {
	case "none", "plain":
		opt.Cycles = polce.CycleNone
	case "online":
		opt.Cycles = polce.CycleOnline
	case "online-incr", "incr":
		opt.Cycles = polce.CycleOnlineIncreasing
	case "periodic":
		opt.Cycles = polce.CyclePeriodic
	default:
		fatal("unknown cycle policy %q", *cycles)
	}
	if opt.Retractable && opt.Cycles == polce.CyclePeriodic {
		// Periodic offline collapses mutate the graph outside batch
		// tracking, so replay could not reproduce the pre-retraction state.
		fatal("-cycles periodic cannot be combined with -retractable; pass -retractable=false")
	}

	reg := telemetry.NewRegistry()
	sm := telemetry.NewSolverMetrics(reg)
	opt.Metrics = sm
	telemetry.PublishExpvar("polce-serve", reg)

	var tracer *telemetry.Tracer
	var tw *telemetry.TraceWriter
	if *traceOut != "" {
		tw, err = telemetry.CreateTrace(*traceOut)
		if err != nil {
			fatal("%v", err)
		}
		tracer = telemetry.NewTracer(tw)
		logger.Info("request tracing on", "path", *traceOut)
	}

	var walLog *wal.Log
	var walRec *wal.Recovered
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fatal("%v", err)
		}
		// The log's meta pins the options that make replay deterministic
		// (form, cycle policy, seed); opening an existing log under
		// different options is a configuration error, not a recovery.
		walLog, walRec, err = wal.Open(*walDir, wal.Options{
			Sync: policy,
			Meta: walreplay.OptionsMeta(opt),
		})
		if err != nil {
			fatal("opening constraint log: %v", err)
		}
		defer walLog.Close()
	}

	srv := serve.New(serve.Config{
		Solver:           polce.New(opt),
		Registry:         reg,
		SolverMetrics:    sm,
		Logger:           logger,
		Tracer:           tracer,
		SlowQuery:        *slowQuery,
		QueueDepth:       *queueDepth,
		RequestTimeout:   *reqTimeout,
		RetryAfter:       *retryAfter,
		MaxBodyBytes:     *maxBody,
		SnapshotMaxStale: *snapStale,
		WAL:              walLog,
		WALSession:       *walSession,
	})

	if walRec != nil && len(walRec.Frames) > 0 {
		start := time.Now()
		constraints, err := srv.Recover(walRec.Frames)
		if err != nil {
			fatal("replaying constraint log: %v", err)
		}
		logger.Info("constraint log replayed",
			"frames", len(walRec.Frames), "constraints", constraints,
			"truncated_bytes", walRec.TruncatedBytes,
			"elapsed", time.Since(start).String())
	} else if walRec != nil && walRec.TruncatedBytes > 0 {
		logger.Warn("constraint log had a torn tail and no intact frames",
			"truncated_bytes", walRec.TruncatedBytes)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	logger.Info("serving",
		"form", opt.Form.String(), "cycles", opt.Cycles.String(),
		"repr", opt.Repr.String(), "ls_workers", polce.ResolveLSWorkers(*lsWorkers),
		"retractable", *retract,
		"addr", ln.Addr().String(), "queue", *queueDepth)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("draining", "queued_batches", srv.QueueLen())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting and finish in-flight requests first, then flush the
	// ingestion queue and close the solver.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fatal("http drain: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fatal("queue drain: %v", err)
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			fatal("closing trace: %v", err)
		}
	}
	logger.Info("drained", "ingested", srv.Ingested())
}

// logger is re-created once -log-level is parsed; the package-level
// default covers diagnostics before that (flag errors included).
var logger = telemetry.NewLogger(os.Stderr, slog.LevelInfo)

func fatal(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
