// Command polce runs Andersen's points-to analysis over a C source file
// using the inclusion-constraint solver with a chosen graph representation
// and cycle-elimination policy, and prints the points-to sets and solver
// statistics.
//
// Usage:
//
//	polce [flags] file.c
//	polce -form if -cycles online -stats file.c
//	polce -steensgaard file.c          # the unification baseline instead
//
// With -gen N a synthetic benchmark program of roughly N AST nodes is
// analysed instead of a file (useful for quick experiments).
//
// Observability (see the README's Observability section):
//
//	polce -metrics-out m.txt file.c    # Prometheus-text metrics at exit
//	polce -trace-out t.ndjson file.c   # NDJSON solver-event trace
//	polce -http :6060 -gen 2000        # serve /metrics, /metrics.json,
//	                                   # /debug/vars and /debug/pprof while
//	                                   # solving, and keep serving after
//
// The telemetry flags instrument the inclusion-constraint solver path:
// phase timers (parse, constraint-gen, closure, least-solution), search
// depth / collapse size / worklist histograms, and edge-attempt counters
// with a redundant-edge ratio gauge.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
	"polce/internal/progen"
	"polce/internal/steens"
	"polce/internal/telemetry"
)

func main() {
	var (
		form      = flag.String("form", "if", "graph representation: sf or if")
		cycles    = flag.String("cycles", "online", "cycle policy: none, online, online-incr")
		seed      = flag.Int64("seed", 1, "variable-order seed")
		stats     = flag.Bool("stats", false, "print solver statistics")
		pts       = flag.Bool("pts", true, "print points-to sets")
		onlyPtrs  = flag.Bool("only-nonempty", true, "print only non-empty points-to sets")
		steensOpt = flag.Bool("steensgaard", false, "run the Steensgaard unification baseline instead")
		gen       = flag.Int("gen", 0, "analyse a generated program of roughly N AST nodes instead of a file")
		interval  = flag.Int("interval", 0, "sweep interval for -cycles periodic (0 = default)")
		lsWorkers = flag.Int("ls-workers", 0, "least-solution pass worker count (0 = GOMAXPROCS, 1 = sequential)")
		reprFlag  = flag.String("repr", "hybrid", "adjacency storage representation: hybrid or csr")
		trace     = flag.Bool("trace", false, "print cycle collapses and sweeps as they happen")
		dotOut    = flag.String("dot", "", "write the final constraint graph as Graphviz DOT to this file")
		ptsDotOut = flag.String("pts-dot", "", "write the points-to graph as Graphviz DOT to this file")
		aliasQ    = flag.String("alias", "", "answer a may-alias query: two location names separated by a comma")
		jsonOut   = flag.String("json", "", "write the analysis report as JSON to this file ('-' for stdout)")

		metricsOut = flag.String("metrics-out", "", "write Prometheus-text solver metrics to this file at exit")
		traceOut   = flag.String("trace-out", "", "stream solver events as NDJSON to this file (closing record carries the final stats)")
		httpAddr   = flag.String("http", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof on this address (e.g. :6060); keeps serving after the run until interrupted")
		logLevel   = flag.String("log-level", "info", "stderr diagnostic level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fatal("%v", err)
	}
	logger = telemetry.NewLogger(os.Stderr, level)

	// Telemetry wiring: the registry and sink exist only when asked for,
	// so the solver's hot-path hooks stay a single nil check otherwise.
	var (
		reg *telemetry.Registry
		sm  *telemetry.SolverMetrics
		tw  *telemetry.TraceWriter
	)
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		reg = telemetry.NewRegistry()
		sm = telemetry.NewSolverMetrics(reg)
		telemetry.PublishExpvar("polce", reg)
	}
	if *httpAddr != "" {
		if _, err := telemetry.Serve(*httpAddr, reg, func(err error) {
			logger.Error("http server error", "error", err.Error())
		}); err != nil {
			fatal("%v", err)
		}
		logger.Info("serving telemetry", "addr", *httpAddr,
			"endpoints", "/metrics /metrics.json /debug/vars /debug/pprof")
	}
	if *traceOut != "" {
		var err error
		tw, err = telemetry.CreateTrace(*traceOut)
		if err != nil {
			fatal("%v", err)
		}
	}

	var src, name string
	switch {
	case *gen > 0:
		name = fmt.Sprintf("generated-%d.c", *gen)
		src = progen.Generate(progen.ByScale(*seed, *gen))
	case flag.NArg() == 1:
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fatal("%v", err)
		}
		src = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	var parseSpan *telemetry.Span
	if sm != nil {
		parseSpan = sm.Phases.Start(telemetry.PhaseParse)
	}
	file, err := cgen.MustParse(name, src)
	if parseSpan != nil {
		parseSpan.Stop()
	}
	if err != nil {
		fatal("%v", err)
	}

	if *steensOpt {
		runSteensgaard(file, *pts, *onlyPtrs)
		return
	}

	opts := andersen.Options{Seed: *seed, PeriodicInterval: *interval, LSWorkers: *lsWorkers}
	if opts.Repr, err = polce.ParseRepr(*reprFlag); err != nil {
		fatal("%v", err)
	}
	if sm != nil {
		opts.Metrics = sm
	}
	var observers []func(polce.Event)
	if *trace {
		observers = append(observers, func(ev polce.Event) {
			switch ev.Kind {
			case polce.EventCycle:
				logger.Info("cycle collapsed",
					"vars", len(ev.Vars), "witness", ev.Witness.Name(), "work", ev.Work)
			case polce.EventSweep:
				logger.Info("sweep collapsed", "vars", ev.Collapsed, "work", ev.Work)
			}
		})
	}
	if tw != nil {
		observers = append(observers, tw.Observe)
	}
	switch len(observers) {
	case 0:
	case 1:
		opts.Observer = observers[0]
	default:
		opts.Observer = func(ev polce.Event) {
			for _, o := range observers {
				o(ev)
			}
		}
	}
	switch strings.ToLower(*form) {
	case "sf":
		opts.Form = polce.SF
	case "if":
		opts.Form = polce.IF
	default:
		fatal("unknown form %q (sf, if)", *form)
	}
	switch strings.ToLower(*cycles) {
	case "none", "plain":
		opts.Cycles = polce.CycleNone
	case "online":
		opts.Cycles = polce.CycleOnline
	case "online-incr", "incr":
		opts.Cycles = polce.CycleOnlineIncreasing
	case "periodic":
		opts.Cycles = polce.CyclePeriodic
	default:
		fatal("unknown cycle policy %q (none, online, online-incr, periodic)", *cycles)
	}

	start := time.Now()
	res := andersen.Analyze(file, opts)
	if sm != nil {
		// The closure share was accumulated by the solver's drain hook;
		// constraint-gen is the analysis remainder.
		closure, _ := sm.Phases.Get(telemetry.PhaseClosure)
		sm.Phases.Add(telemetry.PhaseConstraintGen, time.Since(start)-closure)
	}
	// The least-solution phase timer is fed by the solver's
	// LeastSolutionDone hook (when sm is installed as the metrics sink),
	// so no external Phases.Add here — that would double-count the pass.
	res.Sys.ComputeLeastSolutions()
	elapsed := time.Since(start)

	if *pts {
		printPts(res, *onlyPtrs)
	}
	if *stats {
		st := res.Sys.Stats()
		fmt.Printf("\n%s / %s  time=%v\n", opts.Form, opts.Cycles, elapsed)
		fmt.Printf("  ast-nodes=%d loc=%d\n", cgen.CountNodes(file), cgen.CountLines(src))
		fmt.Printf("  %s\n", st)
		fmt.Printf("  final-edges=%d points-to-edges=%d\n", res.Sys.TotalEdges(), res.PointsToEdges())
		if st.CycleSearches > 0 {
			fmt.Printf("  visits/search=%.2f (Theorem 5.2 predicts ≈2.2 at density 2/n)\n", st.VisitsPerSearch())
		}
	}
	if n := res.Sys.ErrorCount(); n > 0 {
		logger.Warn("inconsistent constraints", "count", n, "first", res.Sys.Errors()[0].Error())
	}

	if *aliasQ != "" {
		parts := strings.SplitN(*aliasQ, ",", 2)
		if len(parts) != 2 {
			fatal("-alias wants two location names separated by a comma")
		}
		a := res.LocationByName(strings.TrimSpace(parts[0]))
		b := res.LocationByName(strings.TrimSpace(parts[1]))
		if a == nil || b == nil {
			fatal("-alias: unknown location (have e.g. %v)", firstNames(res, 8))
		}
		fmt.Printf("may-alias(%s, %s) = %v\n", a.Name, b.Name, res.MayAlias(a, b))
	}
	if *dotOut != "" {
		writeDOT(*dotOut, res.Sys.WriteDOT)
	}
	if *ptsDotOut != "" {
		writeDOT(*ptsDotOut, res.WriteDOT)
	}
	if *jsonOut != "" {
		if *jsonOut == "-" {
			if err := res.WriteJSON(os.Stdout, false); err != nil {
				fatal("%v", err)
			}
		} else {
			writeDOT(*jsonOut, func(w io.Writer) error { return res.WriteJSON(w, false) })
		}
	}

	if sm != nil {
		telemetry.PublishStats(reg, res.Sys.Stats())
	}
	if tw != nil {
		tw.WriteStats(res.Sys.Stats())
		n := tw.Events()
		if err := tw.Close(); err != nil {
			fatal("%v", err)
		}
		logger.Info("wrote trace", "path", *traceOut, "events", n)
	}
	if *metricsOut != "" {
		writeDOT(*metricsOut, reg.WritePrometheus)
	}
	if *httpAddr != "" {
		logger.Info("run complete; still serving until interrupted", "addr", *httpAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// writeDOT writes a DOT rendering to path via render.
func writeDOT(path string, render func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	if err := render(f); err != nil {
		fatal("%v", err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
	logger.Info("wrote file", "path", path)
}

// firstNames lists a few location names for error messages.
func firstNames(res *andersen.Result, n int) []string {
	var out []string
	for _, l := range res.Locations {
		if len(out) == n {
			break
		}
		out = append(out, l.Name)
	}
	return out
}

func printPts(res *andersen.Result, onlyNonempty bool) {
	type row struct {
		name string
		pts  []string
	}
	var rows []row
	for _, l := range res.Locations {
		names := res.PointsToNames(l)
		if onlyNonempty && len(names) == 0 {
			continue
		}
		sort.Strings(names)
		rows = append(rows, row{l.Name, names})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Printf("%s -> {%s}\n", r.name, strings.Join(r.pts, ", "))
	}
}

func runSteensgaard(file *cgen.File, pts, onlyNonempty bool) {
	start := time.Now()
	a := steens.Analyze(file)
	elapsed := time.Since(start)
	if pts {
		for _, l := range a.Locations() {
			names := a.PointsToNames(l)
			if onlyNonempty && len(names) == 0 {
				continue
			}
			sort.Strings(names)
			fmt.Printf("%s -> {%s}\n", l.Name, strings.Join(names, ", "))
		}
	}
	fmt.Printf("\nsteensgaard  time=%v cells=%d locations=%d\n", elapsed, a.CellCount(), len(a.Locations()))
}

// logger is re-created once -log-level is parsed; the package-level
// default covers diagnostics before that (flag errors included).
var logger = telemetry.NewLogger(os.Stderr, slog.LevelInfo)

func fatal(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
