// Command polce-bench regenerates the tables and figures of the paper's
// evaluation (Section 4) and the analytical-model results (Section 5).
//
// Usage:
//
//	polce-bench -all                 # every table, figure and theorem
//	polce-bench -table 2            # one table (1-4)
//	polce-bench -figure 9           # one figure (7-11)
//	polce-bench -model thm51        # Theorem 5.1 (also: thm52)
//	polce-bench -max-ast 20000      # bound the suite (Plain runs are superlinear)
//	polce-bench -bench li           # a single benchmark
//	polce-bench -ablation -figure 11  # include the SF increasing-chain ablation
//	polce-bench -metrics -bench li    # phase timings + search-depth p50/p90/max
//	polce-bench -serve-load           # load-test the HTTP service (self-hosted)
//	polce-bench -serve-load -serve-addr localhost:8080  # against a live polce-serve
//	polce-bench -serve-load -serve-conditional  # readers re-poll with If-None-Match, report the 304 ratio
//	polce-bench -retract -retract-frac 0.10   # retraction benchmark: dirty-cone size + from-scratch equivalence
//	polce-bench -wal-verify /var/lib/polce/wal  # replay a constraint log, check it against its manifest
//
// The benchmark programs are synthetic stand-ins generated at the paper's
// Table 1 scales; see DESIGN.md for the substitution argument.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"polce"
	"polce/internal/bench"
	"polce/internal/model"
	"polce/internal/randgraph"
	"polce/internal/telemetry"
)

// logger carries the binary's stderr diagnostics as structured JSON; the
// benchmark tables and reports themselves still go to stdout as text.
var logger = telemetry.NopLogger()

func die(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate one table (1-4)")
		figure    = flag.Int("figure", 0, "regenerate one figure (7-11)")
		modelSel  = flag.String("model", "", "evaluate the analytical model: thm51 or thm52")
		all       = flag.Bool("all", false, "regenerate every table, figure and theorem")
		maxAST    = flag.Int("max-ast", 20000, "largest benchmark (AST nodes) to include")
		full      = flag.Bool("full", false, "run the full suite regardless of size (slow: the Plain runs are superlinear)")
		benchSel  = flag.String("bench", "", "run a single named benchmark")
		seed      = flag.Int64("seed", 1, "variable-order seed")
		repeat    = flag.Int("repeat", 1, "timed repetitions per cell (best time kept; the paper used 3)")
		ablation  = flag.Bool("ablation", false, "also run the ablations (increasing chains, periodic sweeps) and print the ablation table")
		cfaExp    = flag.Bool("cfa", false, "run the future-work experiment: cycle elimination applied to closure analysis")
		diag      = flag.Bool("diagnostics", false, "print the Section 5 premise measurements (densities, visits/search)")
		orders    = flag.Bool("orders", false, "run the §2.4 order-choice ablation (random vs creation vs reverse)")
		sweep     = flag.Bool("sweep", false, "run the scaling sweep (growth exponents of SF-Plain vs IF-Online)")
		baseline  = flag.Bool("baseline", false, "compare Andersen against the Steensgaard unification baseline (time and precision)")
		csvPath   = flag.String("csv", "", "also write the full measurement matrix as CSV to this file")
		metrics   = flag.Bool("metrics", false, "record and print per-benchmark phase timings (solve/closure/least-solution) and search-depth p50/p90/max")
		parallel  = flag.Bool("parallel", false, "run the experiment grid on the worker-pool runner (form × policy × order × seed across GOMAXPROCS workers)")
		workers   = flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
		baseOut   = flag.String("baseline-out", "", "write the -parallel grid measurements as a JSON baseline to this file")
		lsWorkers = flag.Int("ls-workers", 0, "least-solution pass worker count (0 = GOMAXPROCS, 1 = sequential)")
		lsVerify  = flag.Bool("ls-verify", false, "verify the parallel least-solution pass is bit-identical to the sequential one on every benchmark")
		reprFlag  = flag.String("repr", "hybrid", "adjacency storage representation: hybrid, csr, or both (both expands the -parallel grid)")
		veFlag    = flag.Bool("ve", false, "also time a vertex-elimination closure build per run (ve_closure_ns in baselines)")
		veVerify  = flag.Bool("ve-verify", false, "verify the vertex-elimination closure matches the online least solutions on every benchmark")

		serveLoad     = flag.Bool("serve-load", false, "load-test the HTTP service: N readers race an ingestion writer, report p50/p99 latency and QPS")
		serveAddr     = flag.String("serve-addr", "", "target an already-running polce-serve (host:port); empty self-hosts one in-process")
		serveReaders  = flag.Int("serve-readers", 8, "concurrent query goroutines for -serve-load")
		serveDuration = flag.Duration("serve-duration", 3*time.Second, "read-phase duration for -serve-load")
		serveBatch    = flag.Int("serve-batch", 32, "constraints per ingestion POST for -serve-load")
		serveMinQ     = flag.Int("serve-min-queries", 10000, "keep querying past -serve-duration until this many queries completed (negative disables)")
		serveTrace    = flag.String("serve-trace", "", "write request spans of the self-hosted -serve-load run to this NDJSON file and report the queue-wait vs solve breakdown")
		serveCond     = flag.Bool("serve-conditional", false, "readers re-poll with If-None-Match and the report includes the 304 not-modified ratio")

		retractRun      = flag.Bool("retract", false, "run the retraction benchmark: retract a fraction of batches, measure dirty-cone sizes, verify against a from-scratch solve of the survivors")
		retractFrac     = flag.Float64("retract-frac", 0.10, "fraction of batches retracted for -retract")
		retractClusters = flag.Int("retract-clusters", 64, "constraint batches (clusters) for -retract")
		retractSize     = flag.Int("retract-cluster-size", 12, "variables per cluster for -retract")

		walVerify   = flag.String("wal-verify", "", "replay this constraint-log directory standalone and check the recovered graph against its manifest (recording it on first run)")
		walManifest = flag.String("wal-manifest", "", "manifest path for -wal-verify (default <dir>/manifest.json)")
		walSamples  = flag.Int("wal-samples", 0, "least solutions sampled into the manifest for -wal-verify (0 = 64)")

		logLevel = flag.String("log-level", "info", "stderr diagnostic level: debug, info, warn, error")
	)
	flag.Parse()

	level, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polce-bench: %v\n", err)
		os.Exit(2)
	}
	logger = telemetry.NewLogger(os.Stderr, level)

	var reprs []polce.StorageRepr
	if strings.EqualFold(*reprFlag, "both") {
		reprs = []polce.StorageRepr{polce.ReprHybrid, polce.ReprCSR}
	} else {
		r, err := polce.ParseRepr(*reprFlag)
		if err != nil {
			die(err)
		}
		reprs = []polce.StorageRepr{r}
	}

	if *walVerify != "" {
		err := bench.RunWALVerify(os.Stdout, bench.WALVerifyOptions{
			Dir:          *walVerify,
			ManifestPath: *walManifest,
			Samples:      *walSamples,
		})
		if err != nil {
			die(err)
		}
		return
	}

	if *serveLoad {
		err := bench.RunServeLoad(os.Stdout, bench.ServeLoadOptions{
			Addr:        *serveAddr,
			Readers:     *serveReaders,
			Duration:    *serveDuration,
			Batch:       *serveBatch,
			MinQueries:  *serveMinQ,
			Seed:        *seed,
			TracePath:   *serveTrace,
			Conditional: *serveCond,
		})
		if err != nil {
			die(err)
		}
		return
	}

	if *retractRun {
		// -repr both runs the benchmark once per representation; the
		// self-verification inside RunRetract covers each independently.
		for _, rp := range reprs {
			err := bench.RunRetract(os.Stdout, bench.RetractOptions{
				Clusters:    *retractClusters,
				ClusterSize: *retractSize,
				Frac:        *retractFrac,
				Seed:        *seed,
				Repr:        rp,
			})
			if err != nil {
				die(err)
			}
			fmt.Fprintln(os.Stdout)
		}
		return
	}

	if *lsVerify || *veVerify {
		limit := *maxAST
		if *full {
			limit = 1 << 30
		}
		w := *lsWorkers
		if w <= 1 {
			w = 4
		}
		for _, rp := range reprs {
			if *lsVerify {
				if err := bench.VerifyLeastSolutions(os.Stdout, bench.SuiteUpTo(limit), *seed, w, rp); err != nil {
					die(err)
				}
			}
			if *veVerify {
				if err := bench.VerifyVEClosures(os.Stdout, bench.SuiteUpTo(limit), *seed, rp); err != nil {
					die(err)
				}
			}
		}
		return
	}

	if len(reprs) > 1 && !*parallel && *baseOut == "" {
		die(fmt.Errorf("-repr both only applies to the -parallel grid (and -ls-verify/-ve-verify); pick hybrid or csr"))
	}

	if !*all && *table == 0 && *figure == 0 && *modelSel == "" && !*ablation && !*cfaExp && !*diag && !*orders && !*sweep && !*baseline && !*metrics && !*parallel && *baseOut == "" {
		flag.Usage()
		os.Exit(2)
	}

	var tables, figures []int
	var models []string
	if *all {
		tables = []int{1, 2, 3, 4}
		figures = []int{7, 8, 9, 10, 11}
		models = []string{"thm51", "thm52"}
	}
	if *table != 0 {
		tables = append(tables, *table)
	}
	if *figure != 0 {
		figures = append(figures, *figure)
	}
	if *modelSel != "" {
		models = append(models, *modelSel)
	}

	// Decide which experiments the requested outputs need.
	need := map[string]bool{}
	for _, t := range tables {
		switch t {
		case 2:
			need["SF-Plain"], need["IF-Plain"], need["SF-Oracle"], need["IF-Oracle"] = true, true, true, true
		case 3:
			need["SF-Online"], need["IF-Online"] = true, true
		}
	}
	for _, f := range figures {
		switch f {
		case 7:
			need["SF-Plain"], need["IF-Plain"] = true, true
		case 8:
			need["SF-Oracle"], need["IF-Oracle"], need["SF-Online"], need["IF-Online"] = true, true, true, true
		case 9:
			need["SF-Plain"], need["SF-Online"], need["IF-Online"] = true, true, true
		case 10, 11:
			need["SF-Online"], need["IF-Online"] = true, true
		}
	}
	if *ablation {
		need[bench.Ablation.Name] = true
		need["SF-Online"], need["IF-Online"] = true, true
		for _, e := range bench.PeriodicAblations {
			need[e.Name] = true
		}
	}
	if *diag || *metrics {
		need["SF-Online"], need["IF-Online"] = true, true
	}
	var exps []string
	for _, e := range bench.Experiments {
		if need[e.Name] {
			exps = append(exps, e.Name)
		}
	}
	if need[bench.Ablation.Name] {
		exps = append(exps, bench.Ablation.Name)
	}
	for _, e := range bench.PeriodicAblations {
		if need[e.Name] {
			exps = append(exps, e.Name)
		}
	}

	// Assemble the suite.
	limit := *maxAST
	if *full {
		limit = 1 << 30
	}
	suite := bench.SuiteUpTo(limit)
	if *benchSel != "" {
		b, ok := bench.ByName(*benchSel)
		if !ok {
			die(fmt.Errorf("unknown benchmark %q", *benchSel))
		}
		suite = []bench.Benchmark{b}
	}

	if *parallel || *baseOut != "" {
		runParallelGrid(suite, exps, reprs, *seed, *workers, *repeat, *lsWorkers, *veFlag, *baseOut)
	}

	var results []*bench.Result
	if len(exps) > 0 || containsInt(tables, 1) {
		logger.Info("running experiments", "experiments", len(exps), "benchmarks", len(suite))
		var err error
		results, err = bench.RunSuite(suite, exps, bench.Options{
			Seed:   *seed,
			Repeat: *repeat,
			// Phase breakdowns and depth distributions feed the -metrics
			// table and the CSV's phase/histogram-summary columns.
			Phases:    *metrics || *csvPath != "",
			LSWorkers: *lsWorkers,
			Repr:      reprs[0],
			VE:        *veFlag,
		})
		if err != nil {
			die(err)
		}
	}

	out := os.Stdout
	for _, t := range tables {
		switch t {
		case 1:
			bench.Table1(out, results)
		case 2:
			bench.Table2(out, results)
		case 3:
			bench.Table3(out, results)
		case 4:
			bench.Table4(out)
		default:
			die(fmt.Errorf("no table %d", t))
		}
		fmt.Fprintln(out)
	}
	for _, f := range figures {
		switch f {
		case 7:
			bench.Figure7(out, results)
		case 8:
			bench.Figure8(out, results)
		case 9:
			bench.Figure9(out, results)
		case 10:
			bench.Figure10(out, results)
		case 11:
			bench.Figure11(out, results)
		default:
			die(fmt.Errorf("no figure %d", f))
		}
		fmt.Fprintln(out)
	}
	for _, m := range models {
		switch m {
		case "thm51":
			theorem51(out)
		case "thm52":
			theorem52(out)
		default:
			die(fmt.Errorf("unknown model %q (thm51, thm52)", m))
		}
		fmt.Fprintln(out)
	}

	if *diag {
		bench.Diagnostics(out, results)
		fmt.Fprintln(out)
	}
	if *metrics {
		bench.PhaseTable(out, results)
		fmt.Fprintln(out)
	}
	if *ablation {
		bench.AblationTable(out, results)
		fmt.Fprintln(out)
	}
	if *sweep {
		if err := bench.Sweep(out, nil, *seed); err != nil {
			die(err)
		}
		fmt.Fprintln(out)
	}
	if *orders {
		if err := bench.OrderExperiment(out, suite, *seed); err != nil {
			die(err)
		}
		fmt.Fprintln(out)
	}
	if *baseline {
		if err := bench.BaselineComparison(out, suite, *seed); err != nil {
			die(err)
		}
		fmt.Fprintln(out)
	}
	if *cfaExp || *all {
		if err := bench.CFAExperiment(out, nil, *seed); err != nil {
			die(err)
		}
	}
	if *csvPath != "" && len(results) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			die(err)
		}
		if err := bench.WriteCSV(f, results); err != nil {
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		logger.Info("wrote CSV", "path", *csvPath)
	}
}

// runParallelGrid fans the experiment grid across the worker pool and
// prints a per-cell summary; with baseOut it also writes the committed
// baseline JSON (see BENCH_pr2.json). Each cell's seed is derived
// deterministically from the base seed and the cell's coordinates (repr
// excluded, so a hybrid and a CSR cell are directly comparable).
func runParallelGrid(suite []bench.Benchmark, expNames []string, reprs []polce.StorageRepr, seed int64, workers, repeat, lsWorkers int, ve bool, baseOut string) {
	var exps []bench.Experiment
	for _, name := range expNames {
		if e, ok := bench.ExperimentByName(name); ok {
			exps = append(exps, e)
		}
	}
	if len(exps) == 0 {
		// The baseline's minimum coverage: the two online configurations.
		for _, name := range []string{"SF-Online", "IF-Online"} {
			e, _ := bench.ExperimentByName(name)
			exps = append(exps, e)
		}
	}
	cells := bench.Grid(suite, exps, []polce.OrderStrategy{polce.OrderRandom}, reprs, []int64{seed})
	for i := range cells {
		cells[i].Seed = bench.CellSeed(seed, cells[i])
	}
	opt := bench.ParallelOptions{Workers: workers, Repeat: repeat, Phases: true, LSWorkers: lsWorkers, VE: ve}
	logger.Info("running grid", "cells", len(cells), "workers", effectiveWorkers(workers))
	start := time.Now()
	results := bench.RunParallel(cells, opt)
	logger.Info("grid done", "elapsed", time.Since(start).Round(time.Millisecond).String())
	bench.ParallelTable(os.Stdout, results)
	fmt.Fprintln(os.Stdout)
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	if failed > 0 {
		die(fmt.Errorf("%d cell(s) failed", failed))
	}
	if baseOut != "" {
		f, err := os.Create(baseOut)
		if err != nil {
			die(err)
		}
		b := bench.NewBaseline(results, opt, time.Now())
		if err := bench.WriteBaseline(f, b); err != nil {
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		logger.Info("wrote baseline", "path", baseOut, "cells", len(b.Cells))
	}
}

func effectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// theorem51 prints the analytic E(X_SF)/E(X_IF) ratio at the paper's
// operating point alongside a Monte-Carlo measurement on simulated random
// graphs.
func theorem51(w *os.File) {
	fmt.Fprintln(w, "Theorem 5.1: expected closure work, standard vs inductive form (p = 1/n, m/n = 2/3)")
	fmt.Fprintf(w, "%10s %16s %16s %8s\n", "n", "E(X_SF)", "E(X_IF)", "ratio")
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		m := 2 * n / 3
		p := 1 / float64(n)
		sf := model.EdgeAdditionsSF(n, m, p)
		inf := model.EdgeAdditionsIF(n, m, p)
		fmt.Fprintf(w, "%10d %16.0f %16.0f %8.3f\n", n, sf, inf, sf/inf)
	}
	fmt.Fprintln(w, "\nMonte-Carlo validation (perfect cycle elimination, 20 trials each):")
	fmt.Fprintf(w, "%10s %10s\n", "n", "work ratio")
	for _, n := range []int{500, 1500, 4000} {
		ratio := randgraph.MeanClosureRatio(randgraph.Params{
			N: n, M: 2 * n / 3, P: 1 / float64(n), Seed: 42,
		}, 20)
		fmt.Fprintf(w, "%10d %10.2f\n", n, ratio)
	}
	fmt.Fprintln(w, "\nShape check: the analytic ratio approaches ≈2.5 (Theorem 5.1); the paper")
	fmt.Fprintln(w, "measured an average of 4.1x more work for SF on its benchmarks.")
}

// theorem52 prints the reach bound and its Monte-Carlo measurement.
func theorem52(w *os.File) {
	fmt.Fprintln(w, "Theorem 5.2: expected nodes reachable through order-decreasing chains (p = k/n)")
	fmt.Fprintf(w, "%6s %12s %14s\n", "k", "bound", "exact (n=1e4)")
	for _, k := range []float64{0.5, 1, 2, 3, 4} {
		fmt.Fprintf(w, "%6.1f %12.3f %14.3f\n", k, model.ExpectedReachBound(k), model.ExpectedReachExact(10000, k/10000))
	}
	fmt.Fprintln(w, "\nMonte-Carlo measurement at k = 2 (10 trials):")
	got := randgraph.MeanReach(500, 2.0/500, 42, 10)
	fmt.Fprintf(w, "  measured mean reach: %.3f (bound ≈ %.3f)\n", got, model.ExpectedReachBound(2))
	fmt.Fprintln(w, "\nShape check: at the closed graphs' density (k ≈ 2) a chain search visits ≈2")
	fmt.Fprintln(w, "nodes, which is why online detection costs only a constant per edge; the")
	fmt.Fprintln(w, "bound climbs sharply for denser graphs, so the method relies on sparsity.")
}
