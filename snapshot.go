package polce

import "context"

// A Snapshot is an immutable view of the least solutions at one graph
// version. Taking a snapshot locks the solver once; reading from it never
// locks, so any number of goroutines can query a snapshot while another
// keeps ingesting constraints into the live solver.
//
// Isolation is copy-on-write at the granularity the representation allows:
// under inductive form the least-solution slices are interned and never
// mutated after construction, so the snapshot shares them; under standard
// form the least solution aliases the live source-predecessor storage, so
// the snapshot copies each slice. Either way, nothing reachable from a
// Snapshot is written again, and the epoch guard means repeated Snapshot
// calls on an unchanged graph return the same object without rebuilding.
type Snapshot struct {
	version uint64
	form    Form
	stats   Stats
	errs    int
	ls      map[*Var][]*Term
	names   map[string]*Var
}

// Snapshot captures the current least solutions. While the graph version
// is unchanged since the last capture, the previous snapshot is returned
// as-is; otherwise the solver computes least solutions (reusing the
// incremental engine's dirty-cone pass) and records one entry per created
// variable, resolved through union-find at capture time so snapshot reads
// never touch the live forwarding pointers.
func (s *Solver) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// SnapshotContext is Snapshot with cancellation: if ctx is already done
// when the solver's lock is acquired, no least-solution pass is started
// and ctx's error is returned. A capture that has begun runs to
// completion — the pass mutates only the solver's own cache, so there is
// no partially captured state to observe.
func (s *Solver) SnapshotContext(ctx context.Context) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.snapshotLocked(), nil
}

func (s *Solver) snapshotLocked() *Snapshot {
	if s.snap != nil && s.snap.version == s.sys.Version() {
		return s.snap
	}
	s.sys.ComputeLeastSolutions()
	copySlices := s.sys.Form() == SF
	n := s.sys.NumCreated()
	ls := make(map[*Var][]*Term, n)
	names := make(map[string]*Var, n)
	for i := 0; i < n; i++ {
		v := s.sys.CreatedVar(i)
		if _, ok := names[v.Name()]; !ok {
			names[v.Name()] = v
		}
		if _, ok := ls[v]; ok {
			continue // oracle-aliased index: handle already captured
		}
		terms := s.sys.LeastSolution(v)
		if copySlices && len(terms) > 0 {
			terms = append([]*Term(nil), terms...)
		}
		ls[v] = terms
	}
	s.snap = &Snapshot{
		version: s.sys.Version(),
		form:    s.sys.Form(),
		stats:   s.sys.Stats(),
		errs:    s.sys.ErrorCount(),
		ls:      ls,
		names:   names,
	}
	return s.snap
}

// LeastSolution returns the least solution of v as of the snapshot. It is
// safe to call from any goroutine without locking. The returned slice must
// not be modified. Variables created after the snapshot was taken report a
// nil solution.
func (sn *Snapshot) LeastSolution(v *Var) []*Term {
	return sn.ls[v]
}

// LeastSolutionContext is LeastSolution with a cancellation check, for
// callers that thread one context through every query of a request: if ctx
// is done the read is skipped and ctx's error returned. The read itself is
// a single lock-free map lookup.
func (sn *Snapshot) LeastSolutionContext(ctx context.Context, v *Var) ([]*Term, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sn.ls[v], nil
}

// VarByName returns the variable captured under the given name, or nil if
// no variable of that name existed at capture time. When several created
// variables share a name the first-created one wins; clients that need
// exact handles should keep the *Var from Fresh instead.
func (sn *Snapshot) VarByName(name string) *Var {
	return sn.names[name]
}

// Version returns the graph version the snapshot was taken at.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Form returns the representation of the solver the snapshot came from.
func (sn *Snapshot) Form() Form { return sn.form }

// Stats returns the solver counters as of the snapshot.
func (sn *Snapshot) Stats() Stats { return sn.stats }

// ErrorCount returns the solver's total inconsistency count as of the
// snapshot.
func (sn *Snapshot) ErrorCount() int { return sn.errs }

// NumVars returns the number of variables captured in the snapshot.
func (sn *Snapshot) NumVars() int { return len(sn.ls) }
