package polce

import (
	"context"
	"sort"
)

// A Snapshot is an immutable view of the least solutions at one graph
// version. Taking a snapshot locks the solver once; reading from it never
// locks, so any number of goroutines can query a snapshot while another
// keeps ingesting constraints into the live solver.
//
// Isolation is copy-on-write at the granularity the representation allows:
// under inductive form the least-solution slices are interned and never
// mutated after construction, so the snapshot shares them; under standard
// form the least solution aliases the live source-predecessor storage, so
// the snapshot copies each slice. Either way, nothing reachable from a
// Snapshot is written again, and the epoch guard means repeated Snapshot
// calls on an unchanged graph return the same object without rebuilding.
type Snapshot struct {
	version uint64
	form    Form
	stats   Stats
	errs    int
	ls      map[*Var][]*Term
	names   map[string]*Var

	// Introspection captured alongside the least solutions, so the debug
	// surfaces answer without ever touching the live solver: current graph
	// size and density, the sizes of the equivalence classes cycle
	// elimination has collapsed (descending, classes of ≥ 2 variables
	// only), and the least-solution cache state.
	graph   GraphStats
	classes []int
	lsCache LSCacheState
	storage StorageStats
}

// Snapshot captures the current least solutions. While the graph version
// is unchanged since the last capture, the previous snapshot is returned
// as-is; otherwise the solver computes least solutions (reusing the
// incremental engine's dirty-cone pass) and records one entry per created
// variable, resolved through union-find at capture time so snapshot reads
// never touch the live forwarding pointers.
func (s *Solver) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// SnapshotContext is Snapshot with cancellation: if ctx is already done
// when the solver's lock is acquired, no least-solution pass is started
// and ctx's error is returned. A capture that has begun runs to
// completion — the pass mutates only the solver's own cache, so there is
// no partially captured state to observe.
func (s *Solver) SnapshotContext(ctx context.Context) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.snapshotLocked(), nil
}

func (s *Solver) snapshotLocked() *Snapshot {
	if s.snap != nil && s.snap.version == s.sys.Version() {
		return s.snap
	}
	s.sys.ComputeLeastSolutions()
	copySlices := s.sys.Form() == SF
	n := s.sys.NumCreated()
	ls := make(map[*Var][]*Term, n)
	names := make(map[string]*Var, n)
	classSize := make(map[*Var]int, n)
	for i := 0; i < n; i++ {
		v := s.sys.CreatedVar(i)
		classSize[s.sys.Find(v)]++
		if _, ok := names[v.Name()]; !ok {
			names[v.Name()] = v
		}
		if _, ok := ls[v]; ok {
			continue // oracle-aliased index: handle already captured
		}
		terms := s.sys.LeastSolution(v)
		if copySlices && len(terms) > 0 {
			terms = append([]*Term(nil), terms...)
		}
		ls[v] = terms
	}
	var classes []int
	for _, sz := range classSize {
		if sz >= 2 {
			classes = append(classes, sz)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classes)))
	s.snap = &Snapshot{
		version: s.sys.Version(),
		form:    s.sys.Form(),
		stats:   s.sys.Stats(),
		errs:    s.sys.ErrorCount(),
		ls:      ls,
		names:   names,
		graph:   s.sys.CurrentGraphStats(),
		classes: classes,
		lsCache: s.sys.LSCacheState(),
		storage: s.sys.StorageStats(),
	}
	return s.snap
}

// LeastSolution returns the least solution of v as of the snapshot. It is
// safe to call from any goroutine without locking. The returned slice must
// not be modified. Variables created after the snapshot was taken report a
// nil solution.
func (sn *Snapshot) LeastSolution(v *Var) []*Term {
	return sn.ls[v]
}

// LeastSolutionContext is LeastSolution with a cancellation check, for
// callers that thread one context through every query of a request: if ctx
// is done the read is skipped and ctx's error returned. The read itself is
// a single lock-free map lookup.
func (sn *Snapshot) LeastSolutionContext(ctx context.Context, v *Var) ([]*Term, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sn.ls[v], nil
}

// VarByName returns the variable captured under the given name, or nil if
// no variable of that name existed at capture time. When several created
// variables share a name the first-created one wins; clients that need
// exact handles should keep the *Var from Fresh instead.
func (sn *Snapshot) VarByName(name string) *Var {
	return sn.names[name]
}

// Version returns the graph version the snapshot was taken at.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Form returns the representation of the solver the snapshot came from.
func (sn *Snapshot) Form() Form { return sn.form }

// Stats returns the solver counters as of the snapshot.
func (sn *Snapshot) Stats() Stats { return sn.stats }

// ErrorCount returns the solver's total inconsistency count as of the
// snapshot.
func (sn *Snapshot) ErrorCount() int { return sn.errs }

// NumVars returns the number of variables captured in the snapshot.
func (sn *Snapshot) NumVars() int { return len(sn.ls) }

// Graph returns the graph's size and density as of the snapshot.
func (sn *Snapshot) Graph() GraphStats { return sn.graph }

// LSCache returns the least-solution cache state as of the snapshot.
func (sn *Snapshot) LSCache() LSCacheState { return sn.lsCache }

// Storage returns the storage-backend state (representation name, arena
// edge blocks, delta-worklist high-water marks) as of the snapshot.
func (sn *Snapshot) Storage() StorageStats { return sn.storage }

// CollapsedClasses returns the sizes of the equivalence classes that cycle
// elimination has collapsed so far — one entry per class of two or more
// variables, in descending size order. The eliminated-variable count is
// the sum of (size − 1) over the entries. The returned slice is shared
// and must not be modified.
func (sn *Snapshot) CollapsedClasses() []int { return sn.classes }

// TopVar is one entry of Top: a variable and the size of its least
// solution at the snapshot.
type TopVar struct {
	Var   *Var
	Terms int
}

// Top returns the k variables with the largest least solutions, largest
// first, ties broken by name so the ranking is deterministic. Like every
// snapshot read it is lock-free and safe for any number of concurrent
// callers.
func (sn *Snapshot) Top(k int) []TopVar {
	if k <= 0 {
		return nil
	}
	all := make([]TopVar, 0, len(sn.ls))
	for v, terms := range sn.ls {
		all = append(all, TopVar{Var: v, Terms: len(terms)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Terms != all[j].Terms {
			return all[i].Terms > all[j].Terms
		}
		return all[i].Var.Name() < all[j].Var.Name()
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}
