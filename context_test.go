package polce_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"polce"
)

// countingCtx reports cancellation after a fixed number of Err calls, so a
// test can abort an ingestion at an exact constraint boundary.
type countingCtx struct {
	context.Context
	calls, limit int
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// chainScript returns a deterministic ingestion script: a long var chain
// seeded with atoms, with enough back edges to exercise collapses.
func chainScript(s *polce.Solver, nVars int) ([]*polce.Var, []polce.Constraint) {
	vars := make([]*polce.Var, nVars)
	for i := range vars {
		vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
	}
	a := atoms(4)
	var cs []polce.Constraint
	for i := 0; i < nVars-1; i++ {
		if i%7 == 0 {
			cs = append(cs, polce.Constraint{L: a[i%len(a)], R: vars[i]})
		}
		cs = append(cs, polce.Constraint{L: vars[i], R: vars[i+1]})
		if i%13 == 12 {
			cs = append(cs, polce.Constraint{L: vars[i+1], R: vars[i-5]}) // back edge: a cycle
		}
	}
	return vars, cs
}

// TestAddBatchContextCancelKeepsStateConsistent is the satellite's
// regression test: a cancelled context aborts a large ingestion at a
// constraint boundary, and finishing the remainder later yields exactly
// the state of an uninterrupted run — no corruption, no lost or duplicated
// work.
func TestAddBatchContextCancelKeepsStateConsistent(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		opt := polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 41}

		interrupted := polce.New(opt)
		iVars, iCS := chainScript(interrupted, 400)
		const stopAfter = 97
		// +1: AddBatchContext preflights ctx once before minting the batch,
		// then checks again before each constraint.
		ctx := &countingCtx{Context: context.Background(), limit: stopAfter + 1}
		applied, _, err := interrupted.AddBatchContext(ctx, iCS)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", form, err)
		}
		if applied != stopAfter {
			t.Fatalf("%v: applied %d constraints, want %d", form, applied, stopAfter)
		}
		// The abort point is a consistent solver: finish the rest.
		if n, _, err := interrupted.AddBatchContext(context.Background(), iCS[applied:]); err != nil || n != len(iCS)-applied {
			t.Fatalf("%v: resume applied %d, err %v", form, n, err)
		}

		straight := polce.New(opt)
		sVars, sCS := chainScript(straight, 400)
		straight.AddBatch(sCS)

		if interrupted.Stats() != straight.Stats() {
			t.Fatalf("%v: stats diverge after resume:\n%+v\n%+v", form, interrupted.Stats(), straight.Stats())
		}
		for i := range iVars {
			a := fmt.Sprint(lsNames(interrupted.LeastSolution(iVars[i])))
			b := fmt.Sprint(lsNames(straight.LeastSolution(sVars[i])))
			if a != b {
				t.Fatalf("%v: LS(v%d) diverges after resume: %s vs %s", form, i, a, b)
			}
		}
	}
}

// TestAddBatchContextPromptAbort checks that a concurrent cancel stops a
// large batch long before it would finish on its own.
func TestAddBatchContextPromptAbort(t *testing.T) {
	s := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 7})
	_, cs := chainScript(s, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	applied, _, err := s.AddBatchContext(ctx, cs)
	if err == nil {
		t.Skip("batch completed before the cancel landed; nothing to assert")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if applied >= len(cs) {
		t.Fatalf("applied the whole batch (%d) despite cancellation", applied)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v, not prompt", elapsed)
	}
	// The partially ingested system still answers queries.
	s.ComputeLeastSolutions()
}

// TestAddConstraintContext covers the single-constraint variant: a done
// context refuses before mutating, a live one applies.
func TestAddConstraintContext(t *testing.T) {
	s := polce.New(polce.Options{Form: polce.IF, Seed: 1})
	a := atoms(1)
	x := s.Fresh("X")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.AddConstraintContext(ctx, a[0], x); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled AddConstraintContext err = %v", err)
	}
	if s.TotalEdges() != 0 {
		t.Fatal("cancelled AddConstraintContext mutated the graph")
	}
	if _, err := s.AddConstraintContext(context.Background(), a[0], x); err != nil {
		t.Fatalf("live AddConstraintContext err = %v", err)
	}
	if got := s.LeastSolution(x); len(got) != 1 {
		t.Fatalf("LS(X) = %v", got)
	}
}

// TestSnapshotContext covers the capture-side context variant.
func TestSnapshotContext(t *testing.T) {
	s := polce.New(polce.Options{Form: polce.IF, Seed: 1})
	a := atoms(1)
	x := s.Fresh("X")
	s.AddConstraint(a[0], x)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SnapshotContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SnapshotContext err = %v", err)
	}
	snap, err := s.SnapshotContext(context.Background())
	if err != nil {
		t.Fatalf("SnapshotContext err = %v", err)
	}
	if got, err := snap.LeastSolutionContext(context.Background(), x); err != nil || len(got) != 1 {
		t.Fatalf("LeastSolutionContext = %v, %v", got, err)
	}
	if _, err := snap.LeastSolutionContext(ctx, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled LeastSolutionContext err = %v", err)
	}
}

// TestSolverClose pins the closed-solver contract: context-aware ingestion
// fails with ErrSolverClosed, reads keep working.
func TestSolverClose(t *testing.T) {
	s := polce.New(polce.Options{Form: polce.IF, Seed: 1})
	a := atoms(1)
	x := s.Fresh("X")
	s.AddConstraint(a[0], x)
	if err := s.Close(); err != nil {
		t.Fatalf("Close err = %v", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close err = %v", err)
	}
	if _, err := s.AddConstraintContext(context.Background(), a[0], x); !errors.Is(err, polce.ErrSolverClosed) {
		t.Fatalf("AddConstraintContext after Close err = %v", err)
	}
	if n, _, err := s.AddBatchContext(context.Background(), []polce.Constraint{{L: a[0], R: x}}); n != 0 || !errors.Is(err, polce.ErrSolverClosed) {
		t.Fatalf("AddBatchContext after Close = %d, %v", n, err)
	}
	if got := s.Snapshot().LeastSolution(x); len(got) != 1 {
		t.Fatalf("snapshot after Close LS = %v", got)
	}
}
