package polce_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"polce"
)

// TestCSRSnapshotsDuringCompaction races concurrent snapshot readers
// against heavy CSR-mode ingestion whose cycle collapses retire enough
// arena capacity to trigger online compactions. Snapshots must stay
// isolated from arena relocation: a retained snapshot's least solutions
// are frozen, live readers see monotone versions, and under -race the
// whole capture/read/compact interleaving must be clean.
func TestCSRSnapshotsDuringCompaction(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		t.Run(form.String(), func(t *testing.T) {
			s := polce.New(polce.Options{
				Form: form, Cycles: polce.CycleOnline, Seed: 29, Repr: polce.ReprCSR,
			})
			const (
				nVars    = 1000
				blockLen = 100 // vars per collapsed cycle block
			)
			a := atoms(128)
			vars := make([]*polce.Var, nVars)
			for i := range vars {
				vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
			}
			// Seed every variable with sources so the collapses below
			// retire real term-set capacity, then take the snapshot whose
			// stability across compactions the test asserts.
			rng := rand.New(rand.NewSource(31))
			for i := range vars {
				for j := 0; j < 20; j++ {
					s.AddConstraint(a[rng.Intn(len(a))], vars[i])
				}
			}
			early := s.Snapshot()
			frozen := make([][]string, len(vars))
			for i, v := range vars {
				frozen[i] = lsNames(early.LeastSolution(v))
			}

			done := make(chan struct{})
			errc := make(chan error, 8)
			var wg sync.WaitGroup

			wg.Add(1)
			go func() { // ingestion: edges plus block cycles that collapse
				defer wg.Done()
				defer close(done)
				for base := 0; base+blockLen <= nVars; base += blockLen {
					batch := make([]polce.Constraint, 0, blockLen+1)
					for i := 0; i < blockLen-1; i++ {
						batch = append(batch, polce.Constraint{
							L: vars[base+i], R: vars[base+i+1]})
					}
					// Close the block into a cycle: one collapse of
					// blockLen variables, retiring their set storage.
					batch = append(batch, polce.Constraint{
						L: vars[base+blockLen-1], R: vars[base]})
					s.AddBatch(batch)
				}
				// Second wave: ring the block witnesses together, collapsing
				// the merged (much larger) term sets and retiring their
				// grown segment capacities too.
				for base := 0; base < nVars; base += blockLen {
					s.AddConstraint(vars[base], vars[(base+blockLen)%nVars])
				}
				// Online elimination is partial by design; the offline pass
				// collapses the cycles it missed, retiring the remaining
				// absorbed storage — the push past the compaction threshold.
				s.CollapseCycles()
			}()

			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) { // readers
					defer wg.Done()
					var lastVersion uint64
					rng := rand.New(rand.NewSource(int64(100 + r)))
					for {
						select {
						case <-done:
							return
						default:
						}
						snap := s.Snapshot()
						if v := snap.Version(); v < lastVersion {
							errc <- fmt.Errorf("reader %d: version went backwards: %d then %d", r, lastVersion, v)
							return
						} else {
							lastVersion = v
						}
						for j := 0; j < 20; j++ {
							_ = snap.LeastSolution(vars[rng.Intn(nVars)])
						}
					}
				}(r)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}

			// The retained snapshot must be bit-for-bit what it was before
			// any collapse, relocation or compaction ran.
			for i, v := range vars {
				if got := lsNames(early.LeastSolution(v)); fmt.Sprint(got) != fmt.Sprint(frozen[i]) {
					t.Fatalf("%v: early snapshot LS(v%d) drifted:\nbefore %v\nafter  %v", form, i, frozen[i], got)
				}
			}
			st := s.StorageStats()
			if st.Repr != polce.ReprCSR.String() {
				t.Fatalf("storage repr = %q, want csr", st.Repr)
			}
			// The workload is sized so the collapses retire enough arena
			// capacity to cross the compaction threshold; without this the
			// test would not exercise relocation under concurrent readers.
			if st.Arena.Compactions == 0 {
				t.Fatalf("no arena compaction ran (arena %+v); workload too small", st.Arena)
			}
		})
	}
}
