module polce

go 1.22
